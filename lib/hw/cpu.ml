let mask32 = Isa.Encode.mask32
let sign32 = Isa.Decode.sign32

type regs = {
  gpr : int array;
  mutable eip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable tf : bool;
}

let create_regs () = { gpr = Array.make 8 0; eip = 0; zf = false; sf = false; tf = false }

let copy_regs r = { r with gpr = Array.copy r.gpr }

let get r reg = r.gpr.(Isa.Reg.to_int reg)
let set r reg v = r.gpr.(Isa.Reg.to_int reg) <- mask32 v

type event = Retired | Syscall of int

(* The four control-transfer shapes a CFI monitor distinguishes. *)
type ctrl_kind = Exec_env.ctrl_kind =
  | Call_direct
  | Call_indirect
  | Return
  | Jump_indirect

let ctrl_kind_name = function
  | Call_direct -> "call"
  | Call_indirect -> "call*"
  | Return -> "ret"
  | Jump_indirect -> "jmp*"

type fault =
  | Page of Mmu.fault
  | Invalid_opcode of { eip : int; opcode : int }
  | General_protection of string

let pp_fault ppf = function
  | Page f -> Mmu.pp_fault ppf f
  | Invalid_opcode { eip; opcode } -> Fmt.pf ppf "#UD eip=0x%08x opcode=0x%02x" eip opcode
  | General_protection s -> Fmt.pf ppf "#GP %s" s

type step = { outcome : (event, fault) result; debug_trap : bool }

(* Preallocated results for the overwhelmingly common case: a retired
   instruction produces no fresh step record at all. *)
let ok_retired : (event, fault) result = Ok Retired
let retired_step = { outcome = ok_retired; debug_trap = false }
let retired_step_db = { outcome = ok_retired; debug_trap = true }

let set_flags r v =
  let v = mask32 v in
  r.zf <- v = 0;
  r.sf <- v land 0x80000000 <> 0

let set_flags_signed r diff =
  r.zf <- diff = 0;
  r.sf <- diff < 0

(* the MMU already traced its own faults; #UD and #GP surface here *)
let trace_trap mmu fault =
  let obs = Mmu.obs mmu in
  if Obs.enabled obs then
    Obs.event obs ~cat:"cpu" "cpu.trap"
      ~args:[ ("fault", Obs.Json.Str (Fmt.str "%a" pp_fault fault)) ]

(* Execute one already-decoded instruction at [eip] whose encoding is
   [next - eip] bytes. Register state is only committed once every memory
   access of the instruction has succeeded, so a faulting instruction can be
   transparently restarted after the kernel services the fault — the
   restart-after-page-fault semantics Algorithms 1 and 2 depend on. Shared
   verbatim between the per-instruction interpreter ([step], which decodes
   first) and the block dispatcher ([run_block], which replays a cached
   decode), so the two dispatch modes cannot drift. *)
let exec_insn ~ctrl mmu (r : regs) insn ~eip ~next : (event, fault) result =
  let rd32 a = Mmu.read32_fast mmu ~from_user:true a in
  let wr32 a v = Mmu.write32_fast mmu ~from_user:true a v in
  let rd8 a = Mmu.read8_fast mmu ~from_user:true a in
  let wr8 a v = Mmu.write8_fast mmu ~from_user:true a v in
  let push v =
    let sp = mask32 (get r ESP - 4) in
    wr32 sp v;
    set r ESP sp
  in
  let binop d s f =
    let v = f (get r d) (get r s) in
    set r d v;
    set_flags r v;
    r.eip <- next;
    Ok Retired
  in
  let jump_if cond target =
    (match target with
    | Isa.Insn.Rel disp -> r.eip <- (if cond then mask32 (next + disp) else next)
    | Isa.Insn.Lbl _ -> assert false);
    Ok Retired
  in
  (* Consult the control-transfer monitor (when armed) before the new
     eip is committed. The monitor runs after every memory access of
     the instruction, so a page fault cannot restart the instruction
     past a monitor side effect (a shadow-stack push would otherwise
     happen twice). A denied transfer surfaces as #GP; the monitor has
     already logged why. *)
  let check kind ~target k =
    match ctrl with
    | None -> k ()
    | Some f ->
      if f ~kind ~site:eip ~target ~ret:next then k ()
      else
        Error
          (General_protection
             (Fmt.str "cfi: %s site=0x%08x target=0x%08x" (ctrl_kind_name kind) eip target))
  in
  match (insn : Isa.Insn.t) with
  | Nop ->
    r.eip <- next;
    Ok Retired
  | Hlt -> Error (General_protection "hlt in user mode")
  | Mov_ri (d, i) ->
    set r d i;
    r.eip <- next;
    Ok Retired
  | Mov_rr (d, s) ->
    set r d (get r s);
    r.eip <- next;
    Ok Retired
  | Load (d, b, off) ->
    let v = rd32 (get r b + off) in
    set r d v;
    r.eip <- next;
    Ok Retired
  | Store (b, off, s) ->
    wr32 (get r b + off) (get r s);
    r.eip <- next;
    Ok Retired
  | Loadb (d, b, off) ->
    let v = rd8 (get r b + off) in
    set r d v;
    r.eip <- next;
    Ok Retired
  | Storeb (b, off, s) ->
    wr8 (get r b + off) (get r s land 0xFF);
    r.eip <- next;
    Ok Retired
  | Push s ->
    push (get r s);
    r.eip <- next;
    Ok Retired
  | Pop d ->
    let sp = get r ESP in
    let v = rd32 sp in
    set r ESP (sp + 4);
    set r d v;
    r.eip <- next;
    Ok Retired
  | Lea (d, b, off) ->
    set r d (get r b + off);
    r.eip <- next;
    Ok Retired
  | Add (d, s) -> binop d s ( + )
  | Sub (d, s) -> binop d s ( - )
  | Add_ri (d, i) ->
    let v = get r d + i in
    set r d v;
    set_flags r v;
    r.eip <- next;
    Ok Retired
  | Cmp (a, b) ->
    set_flags_signed r (sign32 (get r a) - sign32 (get r b));
    r.eip <- next;
    Ok Retired
  | Cmp_ri (a, i) ->
    set_flags_signed r (sign32 (get r a) - i);
    r.eip <- next;
    Ok Retired
  | And_ (d, s) -> binop d s ( land )
  | Or_ (d, s) -> binop d s ( lor )
  | Xor (d, s) -> binop d s ( lxor )
  | Mul (d, s) -> binop d s ( * )
  | Shl (d, i) ->
    let v = get r d lsl (i land 31) in
    set r d v;
    set_flags r v;
    r.eip <- next;
    Ok Retired
  | Shr (d, i) ->
    let v = get r d lsr (i land 31) in
    set r d v;
    set_flags r v;
    r.eip <- next;
    Ok Retired
  | Jmp t -> jump_if true t
  | Jz t -> jump_if r.zf t
  | Jnz t -> jump_if (not r.zf) t
  | Jl t -> jump_if r.sf t
  | Jge t -> jump_if (not r.sf) t
  | Jmp_r s ->
    let target = get r s in
    check Jump_indirect ~target (fun () ->
        r.eip <- target;
        Ok Retired)
  | Call t ->
    let disp = match t with Isa.Insn.Rel d -> d | Isa.Insn.Lbl _ -> assert false in
    let target = mask32 (next + disp) in
    push next;
    check Call_direct ~target (fun () ->
        r.eip <- target;
        Ok Retired)
  | Call_r s ->
    let target = get r s in
    push next;
    check Call_indirect ~target (fun () ->
        r.eip <- target;
        Ok Retired)
  | Ret ->
    let sp = get r ESP in
    let v = rd32 sp in
    check Return ~target:v (fun () ->
        set r ESP (sp + 4);
        r.eip <- v;
        Ok Retired)
  | Int 0x80 ->
    r.eip <- next;
    Ok (Syscall (get r EAX))
  | Int n -> Error (General_protection (Fmt.str "int 0x%x unsupported" n))

(* Decode + execute with a caller-chosen fetch for the instruction bytes,
   then fold exceptions and the trap-flag bit into a [step]. The shared
   tail of both [step] and the block dispatcher's fallback path. *)
let step_with ~ctrl ~fetch mmu (r : regs) =
  let tf_at_start = r.tf in
  let exec () =
    let eip = r.eip in
    match Isa.Decode.decode ~fetch eip with
    | Error (Isa.Decode.Bad_opcode op) -> Error (Invalid_opcode { eip; opcode = op })
    | Error (Isa.Decode.Bad_register v) ->
      Error (General_protection (Fmt.str "bad register field %d at eip=0x%08x" v eip))
    | Error Isa.Decode.Truncated ->
      (* unreachable with this fetch-callback decoder (no end-of-stream);
         the page-edge-bounded block builder *does* see [Truncated] — it
         ends the block there and dispatch falls back to this path, whose
         per-byte fetches fault (or succeed) across the page boundary
         exactly as real hardware would *)
      Error (Invalid_opcode { eip; opcode = -1 })
    | Ok insn -> exec_insn ~ctrl mmu r insn ~eip ~next:(eip + Isa.Insn.size insn)
  in
  match exec () with
  | exception Mmu.Pending_fault ->
    (* the fault record is materialized exactly once, here at the trap
       boundary — the fast path below allocated nothing *)
    { outcome = Error (Page (Mmu.pending_fault mmu)); debug_trap = false }
  | exception Mmu.Page_fault f -> { outcome = Error (Page f); debug_trap = false }
  | Error fault as e ->
    trace_trap mmu fault;
    { outcome = e; debug_trap = false }
  | Ok Retired -> if tf_at_start then retired_step_db else retired_step
  | Ok (Syscall _) as ok -> { outcome = ok; debug_trap = tf_at_start }

(* One instruction, byte-at-a-time: the classic interpreter. Kept as a thin
   wrapper over [exec_insn]/[step_with] so existing callers (the scheduler's
   per-instruction path, tests, tools) are untouched by the block-dispatch
   redesign. *)
let step ?ctrl mmu (r : regs) =
  step_with ~ctrl ~fetch:(fun a -> Mmu.fetch8_fast mmu ~from_user:true a) mmu r

(* The block dispatcher's exact fallback for one instruction whose first
   byte has already been translated to packed paddr [pa0] (a negative block:
   undecodable first byte, or operands straddling the page edge). The byte-0
   fetch must not retranslate — that would double the TLB traffic relative
   to the per-instruction interpreter — so it replays only the icache touch
   and the physical read; every later byte goes through the full fast-path
   fetch, faulting across the page boundary exactly as [step] would. *)
let step_env_at_pa0 (env : Exec_env.t) mmu (r : regs) pa0 =
  let eip = r.eip in
  let phys = Mmu.phys mmu in
  let fetch a =
    if a = eip then begin
      Mmu.touch_icache mmu pa0;
      Phys.read8_at phys pa0
    end
    else Mmu.fetch8_fast mmu ~from_user:true a
  in
  step_with ~ctrl:env.Exec_env.ctrl ~fetch mmu r

type block_result = {
  attempts : int;
      (** instructions attempted (retired + the trapping one, if any) —
          the scheduler's quantum/fuel currency, one per [step] the
          per-instruction path would have taken *)
  retired : int;  (** plainly retired instructions, charged but undelivered *)
  pending : step option;
      (** the trap (or syscall) that ended the run, still to be handed to
          the kernel's trap dispatch; [None] = ran out of budget *)
}

(* Dispatch decoded basic blocks until an instruction traps, the attempt
   budget [max_insns] is exhausted, or the cycle counter reaches
   [tick_limit] (the scheduler's next timer interrupt — checked before
   every instruction, exactly where the per-instruction loop calls
   [timer_tick]).

   Equivalence discipline — every architectural side effect of the
   per-instruction interpreter is replayed, per instruction:
   - byte 0 of every instruction goes through a real [translate_result]
     (ITLB hit/walk/fill, walk charges, obs events, sampling) — this is
     also what revalidates the mapping, so pagetable remaps and [invlpg]
     need no cache invalidation at all;
   - bytes 1..size-1 are same-page by construction (blocks are
     page-bounded). With no sampling hook and no icache model their only
     architectural effect is ITLB hit accounting, batched through
     [Tlb.note_hits]; with either installed, each byte replays a real
     translation + icache touch so decimation order and cache-line
     traffic are preserved exactly;
   - retired instructions charge [params.insn] cycles inline (the timer
     comparison and the sampling hook both read [cycles] mid-block) while
     the [insns] counter and retire-rate metrics are batched by the
     caller from [retired];
   - staleness ([Bbcache.stale]) is checked before every instruction, not
     just at block entry, so self-modifying code that rewrites its own
     block takes effect at the very next instruction boundary. *)
let run_block (env : Exec_env.t) mmu (r : regs) ~max_insns ~tick_limit =
  let cache =
    match env.Exec_env.cache with
    | Some c -> c
    | None -> invalid_arg "Cpu.run_block: no block cache installed"
  in
  let cost = Mmu.cost mmu in
  let insn_cycles = cost.Cost.params.Cost.insn in
  let page_size = Phys.page_size (Mmu.phys mmu) in
  let itlb = Mmu.itlb mmu in
  (* Batched fetch accounting is only exact when nothing observes the
     individual byte fetches. *)
  let fast_fetch = env.Exec_env.sample = None && Mmu.icache mmu = None in
  let attempts = ref 0 in
  let retired = ref 0 in
  let pending = ref None in
  let finish s = pending := Some s in
  let rec loop cur =
    if !attempts < max_insns && cost.Cost.cycles < tick_limit then begin
      let eip = r.eip in
      let pa0 = Mmu.translate_result mmu ~from_user:true Mmu.Fetch eip in
      if pa0 < 0 then begin
        incr attempts;
        finish { outcome = Error (Page (Mmu.pending_fault mmu)); debug_trap = false }
      end
      else begin
        let b, idx =
          match cur with
          | Some (b, idx)
            when pa0 = b.Bbcache.b_pa0 + b.Bbcache.offs.(idx) && not (Bbcache.stale cache b)
            -> (b, idx)
          | Some _ | None -> (Bbcache.lookup cache pa0, 0)
        in
        if b.Bbcache.n = 0 then begin
          (* negative block: byte-at-a-time fallback for this one pc *)
          let s = step_env_at_pa0 env mmu r pa0 in
          incr attempts;
          match s.outcome with
          | Ok Retired ->
            env.Exec_env.retire eip;
            cost.Cost.cycles <- cost.Cost.cycles + insn_cycles;
            incr retired;
            loop None
          | Ok (Syscall _) ->
            env.Exec_env.retire eip;
            finish s
          | Error _ -> finish s
        end
        else begin
          let insn = b.Bbcache.insns.(idx) in
          let sz = b.Bbcache.sizes.(idx) in
          Mmu.touch_icache mmu pa0;
          if sz > 1 then
            if fast_fetch then Tlb.note_hits itlb (mask32 eip / page_size) (sz - 1)
            else
              for i = 1 to sz - 1 do
                let pa = Mmu.translate_result mmu ~from_user:true Mmu.Fetch (eip + i) in
                Mmu.touch_icache mmu pa
              done;
          match exec_insn ~ctrl:env.Exec_env.ctrl mmu r insn ~eip ~next:(eip + sz) with
          | exception Mmu.Pending_fault ->
            incr attempts;
            finish { outcome = Error (Page (Mmu.pending_fault mmu)); debug_trap = false }
          | exception Mmu.Page_fault f ->
            incr attempts;
            finish { outcome = Error (Page f); debug_trap = false }
          | Error fault as e ->
            incr attempts;
            trace_trap mmu fault;
            finish { outcome = e; debug_trap = false }
          | Ok Retired ->
            incr attempts;
            env.Exec_env.retire eip;
            cost.Cost.cycles <- cost.Cost.cycles + insn_cycles;
            incr retired;
            let next_idx = idx + 1 in
            if next_idx < b.Bbcache.n && r.eip = eip + sz then loop (Some (b, next_idx))
            else loop None
          | Ok (Syscall _) as ok ->
            incr attempts;
            env.Exec_env.retire eip;
            finish { outcome = ok; debug_trap = false }
        end
      end
    end
  in
  loop None;
  { attempts = !attempts; retired = !retired; pending = !pending }
