let mask32 = Isa.Encode.mask32
let sign32 = Isa.Decode.sign32

type regs = {
  gpr : int array;
  mutable eip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable tf : bool;
}

let create_regs () = { gpr = Array.make 8 0; eip = 0; zf = false; sf = false; tf = false }

let copy_regs r = { r with gpr = Array.copy r.gpr }

let get r reg = r.gpr.(Isa.Reg.to_int reg)
let set r reg v = r.gpr.(Isa.Reg.to_int reg) <- mask32 v

type event = Retired | Syscall of int

(* The four control-transfer shapes a CFI monitor distinguishes. *)
type ctrl_kind = Call_direct | Call_indirect | Return | Jump_indirect

let ctrl_kind_name = function
  | Call_direct -> "call"
  | Call_indirect -> "call*"
  | Return -> "ret"
  | Jump_indirect -> "jmp*"

type fault =
  | Page of Mmu.fault
  | Invalid_opcode of { eip : int; opcode : int }
  | General_protection of string

let pp_fault ppf = function
  | Page f -> Mmu.pp_fault ppf f
  | Invalid_opcode { eip; opcode } -> Fmt.pf ppf "#UD eip=0x%08x opcode=0x%02x" eip opcode
  | General_protection s -> Fmt.pf ppf "#GP %s" s

type step = { outcome : (event, fault) result; debug_trap : bool }

(* Preallocated results for the overwhelmingly common case: a retired
   instruction produces no fresh step record at all. *)
let ok_retired : (event, fault) result = Ok Retired
let retired_step = { outcome = ok_retired; debug_trap = false }
let retired_step_db = { outcome = ok_retired; debug_trap = true }

let set_flags r v =
  let v = mask32 v in
  r.zf <- v = 0;
  r.sf <- v land 0x80000000 <> 0

let set_flags_signed r diff =
  r.zf <- diff = 0;
  r.sf <- diff < 0

(* One instruction. Register state is only committed once every memory
   access of the instruction has succeeded, so a faulting instruction can be
   transparently restarted after the kernel services the fault — the
   restart-after-page-fault semantics Algorithms 1 and 2 depend on. *)
let step ?ctrl mmu (r : regs) =
  let tf_at_start = r.tf in
  let exec () =
    let eip = r.eip in
    let fetch a = Mmu.fetch8_fast mmu ~from_user:true a in
    match Isa.Decode.decode ~fetch eip with
    | Error (Isa.Decode.Bad_opcode op) -> Error (Invalid_opcode { eip; opcode = op })
    | Error (Isa.Decode.Bad_register v) ->
      Error (General_protection (Fmt.str "bad register field %d at eip=0x%08x" v eip))
    | Error Isa.Decode.Truncated ->
      (* unreachable: the fetch-callback decoder has no end-of-stream *)
      Error (Invalid_opcode { eip; opcode = -1 })
    | Ok insn -> (
      let next = eip + Isa.Insn.size insn in
      let rd32 a = Mmu.read32_fast mmu ~from_user:true a in
      let wr32 a v = Mmu.write32_fast mmu ~from_user:true a v in
      let rd8 a = Mmu.read8_fast mmu ~from_user:true a in
      let wr8 a v = Mmu.write8_fast mmu ~from_user:true a v in
      let push v =
        let sp = mask32 (get r ESP - 4) in
        wr32 sp v;
        set r ESP sp
      in
      let binop d s f =
        let v = f (get r d) (get r s) in
        set r d v;
        set_flags r v;
        r.eip <- next;
        Ok Retired
      in
      let jump_if cond target =
        (match target with
        | Isa.Insn.Rel disp -> r.eip <- (if cond then mask32 (next + disp) else next)
        | Isa.Insn.Lbl _ -> assert false);
        Ok Retired
      in
      (* Consult the control-transfer monitor (when armed) before the new
         eip is committed. The monitor runs after every memory access of
         the instruction, so a page fault cannot restart the instruction
         past a monitor side effect (a shadow-stack push would otherwise
         happen twice). A denied transfer surfaces as #GP; the monitor has
         already logged why. *)
      let check kind ~target k =
        match ctrl with
        | None -> k ()
        | Some f ->
          if f ~kind ~site:eip ~target ~ret:next then k ()
          else
            Error
              (General_protection
                 (Fmt.str "cfi: %s site=0x%08x target=0x%08x" (ctrl_kind_name kind) eip
                    target))
      in
      match insn with
      | Nop ->
        r.eip <- next;
        Ok Retired
      | Hlt -> Error (General_protection "hlt in user mode")
      | Mov_ri (d, i) ->
        set r d i;
        r.eip <- next;
        Ok Retired
      | Mov_rr (d, s) ->
        set r d (get r s);
        r.eip <- next;
        Ok Retired
      | Load (d, b, off) ->
        let v = rd32 (get r b + off) in
        set r d v;
        r.eip <- next;
        Ok Retired
      | Store (b, off, s) ->
        wr32 (get r b + off) (get r s);
        r.eip <- next;
        Ok Retired
      | Loadb (d, b, off) ->
        let v = rd8 (get r b + off) in
        set r d v;
        r.eip <- next;
        Ok Retired
      | Storeb (b, off, s) ->
        wr8 (get r b + off) (get r s land 0xFF);
        r.eip <- next;
        Ok Retired
      | Push s ->
        push (get r s);
        r.eip <- next;
        Ok Retired
      | Pop d ->
        let sp = get r ESP in
        let v = rd32 sp in
        set r ESP (sp + 4);
        set r d v;
        r.eip <- next;
        Ok Retired
      | Lea (d, b, off) ->
        set r d (get r b + off);
        r.eip <- next;
        Ok Retired
      | Add (d, s) -> binop d s ( + )
      | Sub (d, s) -> binop d s ( - )
      | Add_ri (d, i) ->
        let v = get r d + i in
        set r d v;
        set_flags r v;
        r.eip <- next;
        Ok Retired
      | Cmp (a, b) ->
        set_flags_signed r (sign32 (get r a) - sign32 (get r b));
        r.eip <- next;
        Ok Retired
      | Cmp_ri (a, i) ->
        set_flags_signed r (sign32 (get r a) - i);
        r.eip <- next;
        Ok Retired
      | And_ (d, s) -> binop d s ( land )
      | Or_ (d, s) -> binop d s ( lor )
      | Xor (d, s) -> binop d s ( lxor )
      | Mul (d, s) -> binop d s ( * )
      | Shl (d, i) ->
        let v = get r d lsl (i land 31) in
        set r d v;
        set_flags r v;
        r.eip <- next;
        Ok Retired
      | Shr (d, i) ->
        let v = get r d lsr (i land 31) in
        set r d v;
        set_flags r v;
        r.eip <- next;
        Ok Retired
      | Jmp t -> jump_if true t
      | Jz t -> jump_if r.zf t
      | Jnz t -> jump_if (not r.zf) t
      | Jl t -> jump_if r.sf t
      | Jge t -> jump_if (not r.sf) t
      | Jmp_r s ->
        let target = get r s in
        check Jump_indirect ~target (fun () ->
            r.eip <- target;
            Ok Retired)
      | Call t ->
        let disp = match t with Isa.Insn.Rel d -> d | Isa.Insn.Lbl _ -> assert false in
        let target = mask32 (next + disp) in
        push next;
        check Call_direct ~target (fun () ->
            r.eip <- target;
            Ok Retired)
      | Call_r s ->
        let target = get r s in
        push next;
        check Call_indirect ~target (fun () ->
            r.eip <- target;
            Ok Retired)
      | Ret ->
        let sp = get r ESP in
        let v = rd32 sp in
        check Return ~target:v (fun () ->
            set r ESP (sp + 4);
            r.eip <- v;
            Ok Retired)
      | Int 0x80 ->
        r.eip <- next;
        Ok (Syscall (get r EAX))
      | Int n -> Error (General_protection (Fmt.str "int 0x%x unsupported" n)))
  in
  (* the MMU already traced its own faults; #UD and #GP surface here *)
  let trace_trap fault =
    let obs = Mmu.obs mmu in
    if Obs.enabled obs then
      Obs.event obs ~cat:"cpu" "cpu.trap"
        ~args:[ ("fault", Obs.Json.Str (Fmt.str "%a" pp_fault fault)) ]
  in
  match exec () with
  | exception Mmu.Pending_fault ->
    (* the fault record is materialized exactly once, here at the trap
       boundary — the fast path below allocated nothing *)
    { outcome = Error (Page (Mmu.pending_fault mmu)); debug_trap = false }
  | exception Mmu.Page_fault f -> { outcome = Error (Page f); debug_trap = false }
  | Error fault as e ->
    trace_trap fault;
    { outcome = e; debug_trap = false }
  | Ok Retired -> if tf_at_start then retired_step_db else retired_step
  | Ok (Syscall _) as ok -> { outcome = ok; debug_trap = tf_at_start }
