type access = Exec_env.access = Fetch | Read | Write

let pp_access ppf = function
  | Fetch -> Fmt.string ppf "fetch"
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"

type hw_pte = { frame : int; present : bool; writable : bool; user : bool; nx : bool }

type fill_mode = Hardware_walk | Software_fill

type fault_kind = Not_present | Protection | Tlb_miss

type fault = { addr : int; access : access; kind : fault_kind; from_user : bool }

exception Page_fault of fault

let fault_kind_name = function
  | Not_present -> "not-present"
  | Protection -> "protection"
  | Tlb_miss -> "tlb-miss"

(* The one fault formatter: Cpu.pp_fault and Kernel.Trap.pp route their
   page-fault arm through here, so trap dispatch, the trace stream and
   simctl all print the same key=value shape. *)
let pp_fault ppf f =
  Fmt.pf ppf "#PF addr=0x%08x access=%a kind=%s mode=%s" f.addr pp_access f.access
    (fault_kind_name f.kind)
    (if f.from_user then "user" else "supervisor")

(* Fault codes returned by [translate_result]. A physical address is always
   >= 0, so the sign bit is a free discriminant: negative results are an
   unboxed Error constructor with the fault kind as payload. *)
let not_present_code = -1
let protection_code = -2
let tlb_miss_code = -3

let fault_code_kind = function
  | -1 -> Not_present
  | -2 -> Protection
  | -3 -> Tlb_miss
  | c -> invalid_arg (Fmt.str "Mmu.fault_code_kind: %d is not a fault code" c)

exception Pending_fault

type t = {
  phys : Phys.t;
  itlb : Tlb.t;
  dtlb : Tlb.t;
  cost : Cost.t;
  mutable nx_enabled : bool;
  mutable fill_mode : fill_mode;
  mutable walk : int -> hw_pte option;
  mutable walk_code : (int -> hw_pte option) option;
      (* §3.3.1 hardware variant: a second pagetable register (CR3-C) used
         for instruction fetches *)
  mutable icache : Cache.t option;
  mutable dcache : Cache.t option;
  mutable obs : Obs.t;
  (* fault-injection hooks (lib/inject): [tlb_guard] is consulted on every
     TLB hit — returning [false] rejects the cached entry as corrupted, the
     MMU drops it and retranslates from the live pagetable (the kernel-side
     desync detector). [invlpg_hook] returning [true] swallows an [invlpg]
     — the "missed invalidation" fault the phantom-entry class models. *)
  mutable tlb_guard : (access -> Tlb.entry -> bool) option;
  mutable invlpg_hook : (int -> bool) option;
  (* the execution environment: the per-machine hooks record shared with
     the CPU dispatch loop. The MMU reads [env.sample] (the lib/prof
     address-sampling hook) on every successful translation — unboxed
     arguments, so with nothing installed the fast path pays one branch
     and zero allocation. *)
  env : Exec_env.t;
  (* pending-fault registers: like x86's CR2, the details of the last fault
     live in mutable registers instead of an allocated record, so the fast
     path faults without touching the minor heap. [pending_fault]
     materializes them on demand at the trap boundary. *)
  mutable pend_addr : int;
  mutable pend_access : access;
  mutable pend_kind : fault_kind;
  mutable pend_from_user : bool;
}

let no_pagetable _ = None

let create ?(itlb_capacity = 64) ?(dtlb_capacity = 64) ?(tlb_policy = Tlb.Fifo)
    ~phys ~cost () =
  {
    phys;
    itlb = Tlb.create ~policy:tlb_policy ~name:"itlb" ~capacity:itlb_capacity ();
    dtlb = Tlb.create ~policy:tlb_policy ~name:"dtlb" ~capacity:dtlb_capacity ();
    cost;
    nx_enabled = false;
    fill_mode = Hardware_walk;
    walk = no_pagetable;
    walk_code = None;
    icache = None;
    dcache = None;
    obs = Obs.null;
    tlb_guard = None;
    invlpg_hook = None;
    env = Exec_env.create ();
    pend_addr = 0;
    pend_access = Read;
    pend_kind = Not_present;
    pend_from_user = false;
  }

let phys t = t.phys
let itlb t = t.itlb
let dtlb t = t.dtlb
let cost t = t.cost
let env t = t.env
let obs t = t.obs
let set_obs t obs = t.obs <- obs
let set_nx t v = t.nx_enabled <- v
let nx_enabled t = t.nx_enabled
let set_fill_mode t m = t.fill_mode <- m
let fill_mode t = t.fill_mode

let enable_caches ?(lines = 512) t =
  t.icache <- Some (Cache.create ~name:"icache" ~lines ());
  t.dcache <- Some (Cache.create ~name:"dcache" ~lines ())

let icache t = t.icache
let dcache t = t.dcache

let touch_icache t paddr =
  match t.icache with
  | None -> ()
  | Some c -> if not (Cache.access c paddr) then Cost.charge t.cost t.cost.params.icache_miss

let touch_dcache_read t paddr =
  match t.dcache with
  | None -> ()
  | Some c -> if not (Cache.access c paddr) then Cost.charge t.cost t.cost.params.dcache_miss

(* A store: dcache traffic plus x86 self-modifying-code coherency — if the
   written line is in the icache it must be invalidated and the pipeline
   flushed. *)
let touch_dcache_write t paddr =
  (match t.dcache with
  | None -> ()
  | Some c -> if not (Cache.access c paddr) then Cost.charge t.cost t.cost.params.dcache_miss);
  match t.icache with
  | None -> ()
  | Some c -> if Cache.invalidate c paddr then Cost.charge t.cost t.cost.params.smc_penalty

(* Software TLB fill: what a SPARC-style TLB-load instruction does from
   inside the OS's miss handler. *)
let load_tlb t access (e : Tlb.entry) =
  Cost.charge t.cost t.cost.params.soft_tlb_fill;
  let tlb = match access with Fetch -> t.itlb | Read | Write -> t.dtlb in
  if Obs.enabled t.obs then begin
    Obs.count t.obs "mmu.soft_fills";
    Obs.event t.obs ~cat:"hw" "mmu.soft_fill"
      ~args:[ ("tlb", Obs.Json.Str (Tlb.name tlb)); ("vpn", Obs.Json.Int e.vpn) ]
  end;
  Tlb.insert tlb e

let flush_tlbs t =
  Tlb.flush t.itlb;
  Tlb.flush t.dtlb;
  if Obs.enabled t.obs then begin
    Obs.count t.obs "mmu.tlb_flushes";
    Obs.event t.obs ~cat:"hw" "mmu.tlb_flush"
  end

let reload_cr3 t walk =
  t.walk <- walk;
  t.walk_code <- None;
  flush_tlbs t

(* The paper's §3.3.1 hardware modification: load both pagetable registers,
   CR3-C for instruction fetches and CR3-D for data accesses. *)
let reload_cr3_dual t ~code ~data =
  t.walk <- data;
  t.walk_code <- Some code;
  flush_tlbs t

let set_tlb_guard t g = t.tlb_guard <- g
let has_tlb_guard t = t.tlb_guard <> None
let set_invlpg_hook t h = t.invlpg_hook <- h

let invlpg t vpn =
  match t.invlpg_hook with
  | Some h when h vpn -> () (* injected: the invalidation is lost *)
  | _ ->
    Tlb.invalidate t.itlb vpn;
    Tlb.invalidate t.dtlb vpn

let mask32 = Isa.Encode.mask32

(* Every architectural fault latches through here so the pending registers
   and the trace stream see them uniformly, whichever path detected it.
   Returns the negative fault code for [translate_result]. *)
let record_fault t ~addr ~access ~kind ~from_user =
  t.pend_addr <- addr;
  t.pend_access <- access;
  t.pend_kind <- kind;
  t.pend_from_user <- from_user;
  if Obs.enabled t.obs then begin
    Obs.count t.obs "mmu.faults";
    Obs.event t.obs ~cat:"hw" "mmu.fault"
      ~args:
        [
          ("addr", Obs.Json.Int addr);
          ("access", Obs.Json.Str (Fmt.str "%a" pp_access access));
          ("kind", Obs.Json.Str (fault_kind_name kind));
        ]
  end;
  match kind with
  | Not_present -> not_present_code
  | Protection -> protection_code
  | Tlb_miss -> tlb_miss_code

let pending_fault t =
  {
    addr = t.pend_addr;
    access = t.pend_access;
    kind = t.pend_kind;
    from_user = t.pend_from_user;
  }

(* The non-raising, non-allocating translation core. Permission checks keep
   the x86 order (user, then write, then nx) and are performed against the
   cached TLB entry on a hit and against the PTE on a miss; a violating
   miss does not fill the TLB. *)
let rec translate_result t ~from_user access vaddr =
  let vaddr = mask32 vaddr in
  let page_size = Phys.page_size t.phys in
  let vpn = vaddr / page_size in
  let tlb = match access with Fetch -> t.itlb | Read | Write -> t.dtlb in
  match Tlb.find tlb vpn with
  | (e : Tlb.entry) ->
    if match t.tlb_guard with None -> false | Some g -> not (g access e) then begin
      (* the guard rejected the cached entry as corrupted: drop it and
         retranslate — the retry misses and refills (or faults) from the
         live pagetable. No closure, no box: the fast path stays
         allocation-free when no guard is installed. *)
      Tlb.invalidate tlb vpn;
      translate_result t ~from_user access vaddr
    end
    else if
      (from_user && not e.user)
      || (access = Write && not e.writable)
      || (access = Fetch && t.nx_enabled && e.nx)
    then record_fault t ~addr:vaddr ~access ~kind:Protection ~from_user
    else begin
      (match t.env.sample with None -> () | Some h -> h access vpn true);
      (e.frame * page_size) + (vaddr mod page_size)
    end
  | exception Not_found -> (
    if t.fill_mode = Software_fill then
      (* the hardware has no walker: trap to the OS miss handler *)
      record_fault t ~addr:vaddr ~access ~kind:Tlb_miss ~from_user
    else begin
      Cost.charge_walk t.cost;
      if Obs.enabled t.obs then begin
        Obs.count t.obs "mmu.walks";
        Obs.event t.obs ~cat:"hw" "mmu.walk"
          ~args:[ ("vpn", Obs.Json.Int vpn); ("tlb", Obs.Json.Str (Tlb.name tlb)) ]
      end;
      let walk =
        match (access, t.walk_code) with
        | Fetch, Some wc -> wc
        | (Fetch | Read | Write), _ -> t.walk
      in
      match walk vpn with
      | None -> record_fault t ~addr:vaddr ~access ~kind:Not_present ~from_user
      | Some p ->
        if not p.present then record_fault t ~addr:vaddr ~access ~kind:Not_present ~from_user
        else if
          (from_user && not p.user)
          || (access = Write && not p.writable)
          || (access = Fetch && t.nx_enabled && p.nx)
        then record_fault t ~addr:vaddr ~access ~kind:Protection ~from_user
        else begin
          if Obs.enabled t.obs then Obs.count t.obs "mmu.fills";
          Tlb.insert tlb
            { vpn; frame = p.frame; user = p.user; writable = p.writable; nx = p.nx };
          (match t.env.sample with None -> () | Some h -> h access vpn false);
          (p.frame * page_size) + (vaddr mod page_size)
        end
    end)

let translate t ~from_user access vaddr =
  let pa = translate_result t ~from_user access vaddr in
  if pa < 0 then raise (Page_fault (pending_fault t));
  let page_size = Phys.page_size t.phys in
  (pa / page_size, pa mod page_size)

(* The fast-path access module for the CPU dispatch loop. One shared
   translation core ([paddr]) holds the fault plumbing that used to be
   copy-pasted across five accessors: a negative translation raises the
   constant [Pending_fault], so the whole miss path allocates nothing and
   the caller materializes the fault record once, at the trap boundary,
   via [pending_fault]. Each accessor then layers exactly its cache
   traffic (icache for fetches, dcache — plus SMC coherency on stores —
   for data) over the physical access. 32-bit accesses split at page
   boundaries into four byte accesses, each with its own translation and
   its own fault point, as the hardware would split them. *)
module Fast = struct
  let paddr t ~from_user access vaddr =
    let pa = translate_result t ~from_user access vaddr in
    if pa < 0 then raise Pending_fault;
    pa

  let fetch8 t ~from_user vaddr =
    let pa = paddr t ~from_user Fetch vaddr in
    touch_icache t pa;
    Phys.read8_at t.phys pa

  let read8 t ~from_user vaddr =
    let pa = paddr t ~from_user Read vaddr in
    touch_dcache_read t pa;
    Phys.read8_at t.phys pa

  let write8 t ~from_user vaddr v =
    let pa = paddr t ~from_user Write vaddr in
    touch_dcache_write t pa;
    Phys.write8_at t.phys pa v

  let read32 t ~from_user vaddr =
    let page_size = Phys.page_size t.phys in
    if mask32 vaddr mod page_size <= page_size - 4 then begin
      let pa = paddr t ~from_user Read vaddr in
      touch_dcache_read t pa;
      Phys.read32_at t.phys pa
    end
    else
      let b i = read8 t ~from_user (vaddr + i) in
      b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

  let write32 t ~from_user vaddr v =
    let page_size = Phys.page_size t.phys in
    if mask32 vaddr mod page_size <= page_size - 4 then begin
      let pa = paddr t ~from_user Write vaddr in
      touch_dcache_write t pa;
      Phys.write32_at t.phys pa v
    end
    else
      for i = 0 to 3 do
        write8 t ~from_user (vaddr + i) ((v lsr (8 * i)) land 0xFF)
      done
end

(* Historical flat names for the [Fast] accessors. *)
let fetch8_fast = Fast.fetch8
let read8_fast = Fast.read8
let write8_fast = Fast.write8
let read32_fast = Fast.read32
let write32_fast = Fast.write32

(* Record-raising wrappers for existing callers (the kernel's copy loops,
   tests, tools): same semantics as before the fast path existed. *)

let fetch8 t ~from_user vaddr =
  try Fast.fetch8 t ~from_user vaddr
  with Pending_fault -> raise (Page_fault (pending_fault t))

let read8 t ~from_user vaddr =
  try Fast.read8 t ~from_user vaddr
  with Pending_fault -> raise (Page_fault (pending_fault t))

let write8 t ~from_user vaddr v =
  try Fast.write8 t ~from_user vaddr v
  with Pending_fault -> raise (Page_fault (pending_fault t))

let read32 t ~from_user vaddr =
  try Fast.read32 t ~from_user vaddr
  with Pending_fault -> raise (Page_fault (pending_fault t))

let write32 t ~from_user vaddr v =
  try Fast.write32 t ~from_user vaddr v
  with Pending_fault -> raise (Page_fault (pending_fault t))

(* The pagetable-walk DTLB-load trick of Algorithm 1: with the PTE
   temporarily unrestricted, the kernel "reads a byte off the page", which
   makes the hardware walk the pagetable and fill the data-TLB. *)
let touch_read t vaddr = ignore (read8 t ~from_user:true vaddr)

(* Kernel store into a physical frame holding code — what the ret-gadget
   ITLB loader does when it plants its gadget byte. x86 self-modifying-code
   machinery snoops stores against pages being executed conservatively, so
   the pipeline-flush penalty applies whether or not the exact line is
   resident; a resident line is invalidated as well. *)
let kernel_code_write t ~frame ~off v =
  let paddr = Phys.addr t.phys ~frame ~off in
  (match t.dcache with
  | None -> ()
  | Some c -> if not (Cache.access c paddr) then Cost.charge t.cost t.cost.params.dcache_miss);
  (match t.icache with
  | None -> ()
  | Some c ->
    ignore (Cache.invalidate c paddr);
    Cost.charge t.cost t.cost.params.smc_penalty);
  Phys.write8 t.phys ~frame ~off v
