(* The execution environment: one mutable record per machine collecting
   every hook the CPU dispatch loop consults, replacing the optional
   arguments and per-subsystem hook fields that used to accrete on
   [Cpu.step] ([?ctrl]) and [Mmu.t] ([sample_hook]). The record is built
   once (by [Mmu.create]) and mutated in place: the scheduler arms [ctrl]
   and [retire] per quantum, the profiler installs [sample] on attach, and
   the machine installs [cache] at creation. Keeping the fields unboxed
   options (and [retire] a plain closure) preserves the allocation-free
   discipline: a machine with nothing installed pays one branch per use. *)

type access = Fetch | Read | Write

type ctrl_kind = Call_direct | Call_indirect | Return | Jump_indirect

type ctrl = kind:ctrl_kind -> site:int -> target:int -> ret:int -> bool

type t = {
  mutable ctrl : ctrl option;
      (* control-transfer monitor (CFI); consulted before a transfer's new
         eip commits, armed per quantum by the scheduler *)
  mutable sample : (access -> int -> bool -> unit) option;
      (* address-sampling profiler hook: (access, vpn, tlb_hit) on every
         successful translation; decimation is the hook's own business *)
  mutable retire : int -> unit;
      (* per-retired-instruction hook with the instruction's eip (the
         kernel's forensic trace ring); [ignore] when nothing listens *)
  mutable cache : Bbcache.t option;
      (* decoded basic-block cache; [None] = per-instruction dispatch *)
}

let create () = { ctrl = None; sample = None; retire = ignore; cache = None }
