(* Decoded basic-block cache, keyed by *physical* address of the block's
   first byte. Frame keying (instead of eip × process) buys three
   properties at once: blocks are shared by every mapping of a frame (all
   forks of a guest, split-memory code views), copy-on-write is correct for
   free (the writer moves to a fresh frame, which is a fresh key), and a
   tampered translation is reproduced exactly (a wrong-pfn TLB entry sends
   execution to some frame, and the block is decoded from precisely the
   bytes the per-instruction interpreter would have fetched there).

   Invalidation is generation-based: each frame carries a generation
   counter, bumped by the {!Phys} write watch whenever a frame that backs
   at least one block is mutated — guest self-modifying stores, the
   split-memory kernel's gadget writes ([Mmu.kernel_code_write] lands in
   [Phys.write8]), demand-paging blits into recycled frames, fork/COW
   copies, and snapshot-restore refills all funnel through the same hook.
   Stale blocks are detected lazily on lookup (the stored generation no
   longer matches) and rebuilt from the current bytes. Pagetable remapping
   and [invlpg] need no hook at all: dispatch re-translates the first byte
   of every instruction, so a changed mapping simply resolves to a
   different frame and therefore a different key.

   Blocks are decoded with {!Isa.Decode.of_string} over the frame's bytes,
   so construction is bounded by the page edge by construction: an
   instruction whose operands would extend past the end of the frame
   decodes as [Truncated] and ends the block before it — the trailing
   straddler (or an undecodable first byte) leaves an *empty* block, which
   tells the dispatcher to fall back to the exact byte-at-a-time
   interpreter path for that one instruction. *)

type block = {
  b_pa0 : int;  (* packed paddr (frame * page_size + off) of byte 0 *)
  b_frame : int;
  b_gen : int;  (* frame generation the bytes were decoded under *)
  insns : Isa.Insn.t array;
  sizes : int array;  (* sizes.(i) = encoded size of insns.(i) *)
  offs : int array;  (* offs.(i) = byte offset of insns.(i) from b_pa0 *)
  n : int;  (* 0 = negative block: dispatch must fall back for this pc *)
}

type stats = {
  mutable hits : int;
  mutable misses : int;  (* lookups that had to build (cold or stale) *)
  mutable invalidations : int;  (* write-watch generation bumps *)
  mutable blocks_built : int;
  mutable insns_built : int;  (* total decoded instructions over all builds *)
}

type t = {
  phys : Phys.t;
  page_size : int;
  blocks : (int, block) Hashtbl.t;
  gen : int array;  (* per-frame generation *)
  stats : stats;
  max_block : int;  (* instruction-count cap per block *)
  max_blocks : int;  (* table size at which the cache resets wholesale *)
  scratch : Bytes.t;  (* page-sized frame snapshot buffer, reused per build *)
}

let create ?(max_block = 128) ?(max_blocks = 65_536) ~phys () =
  let t =
    {
      phys;
      page_size = Phys.page_size phys;
      blocks = Hashtbl.create 1024;
      gen = Array.make (Phys.frame_count phys) 0;
      stats = { hits = 0; misses = 0; invalidations = 0; blocks_built = 0; insns_built = 0 };
      max_block;
      max_blocks;
      scratch = Bytes.create (Phys.page_size phys);
    }
  in
  Phys.set_write_watch phys
    (Some
       (fun frame ->
         t.gen.(frame) <- t.gen.(frame) + 1;
         t.stats.invalidations <- t.stats.invalidations + 1));
  t

let stats t = t.stats
let generation t frame = t.gen.(frame)

(* Drop every cached block. Generations are kept (monotonic per machine
   lifetime) so blocks cached before the clear can never validate again. *)
let clear t = Hashtbl.reset t.blocks

let build t pa0 =
  let frame = pa0 / t.page_size in
  let off0 = pa0 mod t.page_size in
  (* Raw frame snapshot into the reused scratch buffer: no ECC scrub, no
     cache traffic, no per-build string — construction is side-effect-free,
     all architectural fetch effects are replayed at dispatch time. The
     unsafe view is sound because [Decode.of_string] does not retain it. *)
  Phys.blit_to_bytes t.phys ~frame t.scratch;
  let bytes = Bytes.unsafe_to_string t.scratch in
  let rec collect off acc count =
    if count >= t.max_block then List.rev acc
    else
      match Isa.Decode.of_string bytes off with
      | Error _ ->
        (* Bad opcode, bad register, or operands running off the page edge:
           end the block before the undecodable instruction — dispatch
           falls back to the exact interpreter when it reaches this pc. *)
        List.rev acc
      | Ok insn ->
        if Isa.Insn.is_block_end insn then List.rev (insn :: acc)
        else collect (off + Isa.Insn.size insn) (insn :: acc) (count + 1)
  in
  let insns = Array.of_list (collect off0 [] 0) in
  let n = Array.length insns in
  let sizes = Array.map Isa.Insn.size insns in
  let offs = Array.make (max n 1) 0 in
  for i = 1 to n - 1 do
    offs.(i) <- offs.(i - 1) + sizes.(i - 1)
  done;
  t.stats.blocks_built <- t.stats.blocks_built + 1;
  t.stats.insns_built <- t.stats.insns_built + n;
  let b = { b_pa0 = pa0; b_frame = frame; b_gen = t.gen.(frame); insns; sizes; offs; n } in
  if Hashtbl.length t.blocks >= t.max_blocks then clear t;
  Hashtbl.replace t.blocks pa0 b;
  Phys.watch_frame t.phys ~frame;
  b

let lookup t pa0 =
  match Hashtbl.find t.blocks pa0 with
  | b ->
    if b.b_gen = t.gen.(b.b_frame) then begin
      t.stats.hits <- t.stats.hits + 1;
      b
    end
    else begin
      t.stats.misses <- t.stats.misses + 1;
      build t pa0
    end
  | exception Not_found ->
    t.stats.misses <- t.stats.misses + 1;
    build t pa0

(* True when [b] no longer describes the bytes at its frame — a store hit
   the frame since the block was decoded (self-modifying code). Dispatch
   checks this before every instruction of a block, not just at entry. *)
let stale t b = b.b_gen <> t.gen.(b.b_frame)

let insns_per_block t =
  if t.stats.blocks_built = 0 then 0.0
  else float_of_int t.stats.insns_built /. float_of_int t.stats.blocks_built
