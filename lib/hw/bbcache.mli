(** Decoded basic-block cache for the CPU dispatch loop.

    Blocks are keyed by the {e physical} address of their first byte and
    validated against a per-frame generation counter driven by the
    {!Phys} write watch, so any mutation of a frame that backs cached
    blocks (guest self-modifying stores, kernel gadget writes, demand
    paging into recycled frames, COW copies, snapshot-restore refills)
    invalidates them. Construction is side-effect-free and page-bounded:
    decoding stops at — and includes — control transfers, [int], and
    [hlt] ({!Isa.Insn.is_block_end}), and stops {e before} an instruction
    that fails to decode or whose operands would cross the page edge.

    The cache stores pre-decoded instructions only; every architectural
    side effect of fetching them (TLB traffic, walk charges, sampling,
    icache touches) is replayed by {!Cpu.run_block} at dispatch time, so
    enabling the cache is observationally invisible. *)

type block = private {
  b_pa0 : int;  (** packed paddr ([frame * page_size + off]) of byte 0 *)
  b_frame : int;
  b_gen : int;
  insns : Isa.Insn.t array;
  sizes : int array;
  offs : int array;  (** byte offset of each instruction from [b_pa0] *)
  n : int;
      (** number of decoded instructions; [0] is a negative block — the
          first instruction is undecodable or straddles the page edge, and
          dispatch must fall back to the byte-at-a-time interpreter *)
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable blocks_built : int;
  mutable insns_built : int;
}

type t

val create : ?max_block:int -> ?max_blocks:int -> phys:Phys.t -> unit -> t
(** Create a cache over [phys] and install its {!Phys.set_write_watch}
    hook (one cache per physical memory). [max_block] (default 128) caps
    instructions per block; [max_blocks] (default 65536) bounds the table
    — reaching it clears the cache wholesale, deterministically. *)

val lookup : t -> int -> block
(** [lookup t pa0] returns the block starting at packed physical address
    [pa0], building (or rebuilding, if stale) it from the frame's current
    bytes. *)

val stale : t -> block -> bool
(** The block's frame was written since it was decoded. Dispatch must
    check before every instruction, not just at block entry. *)

val generation : t -> int -> int
(** Current generation of a frame. *)

val clear : t -> unit
(** Drop all cached blocks (snapshot restore; derived state only). *)

val stats : t -> stats
val insns_per_block : t -> float
