(** Minimal JSON values: enough to export traces and metric snapshots and
    to parse them back in tests. No external dependency (yojson is not in
    the tool image). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering with proper string escaping. *)

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Strict parse of one JSON document (no trailing garbage). *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] otherwise. *)

val to_int : t -> int option
val to_str : t -> string option
