type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent; enough for round-tripping our output)   *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < len && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub s !pos n = word then begin
      pos := !pos + n;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= len then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               if !pos + 4 >= len then fail "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
               in
               (* our own emitter only writes \u for control characters *)
               Buffer.add_char buf (if code < 128 then Char.chr code else '?');
               pos := !pos + 5
             | _ -> fail "unknown escape");
          go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields (kv :: acc)
          | Some '}' -> advance (); List.rev (kv :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (fields [])
      end
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
