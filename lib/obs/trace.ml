type phase = Instant | Begin | End | Complete of int

type event = {
  ts : int;
  cat : string;
  name : string;
  ph : phase;
  args : (string * Json.t) list;
}

(* ------------------------------------------------------------------ *)
(* Bounded ring-buffer sink                                            *)
(* ------------------------------------------------------------------ *)

type ring = {
  capacity : int;
  buf : event option array;
  mutable next : int;  (* slot the next event is written to *)
  mutable length : int;
  mutable dropped : int;
}

let create ?(capacity = 8192) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; buf = Array.make capacity None; next = 0; length = 0; dropped = 0 }

let capacity r = r.capacity
let length r = r.length
let dropped r = r.dropped

let add r e =
  if r.length = r.capacity then r.dropped <- r.dropped + 1
  else r.length <- r.length + 1;
  r.buf.(r.next) <- Some e;
  r.next <- (r.next + 1) mod r.capacity

(* Oldest retained event first. *)
let to_list r =
  let start = (r.next - r.length + r.capacity) mod r.capacity in
  List.init r.length (fun i ->
      match r.buf.((start + i) mod r.capacity) with
      | Some e -> e
      | None -> assert false)

let clear r =
  Array.fill r.buf 0 r.capacity None;
  r.next <- 0;
  r.length <- 0;
  r.dropped <- 0

(* ------------------------------------------------------------------ *)
(* JSON export / import                                                *)
(* ------------------------------------------------------------------ *)

let phase_code = function
  | Instant -> "i"
  | Begin -> "B"
  | End -> "E"
  | Complete _ -> "X"

let event_to_json e =
  let base =
    [
      ("ts", Json.Int e.ts);
      ("ph", Json.Str (phase_code e.ph));
      ("cat", Json.Str e.cat);
      ("name", Json.Str e.name);
    ]
  in
  let dur = match e.ph with Complete d -> [ ("dur", Json.Int d) ] | _ -> [] in
  let args = match e.args with [] -> [] | a -> [ ("args", Json.Obj a) ] in
  Json.Obj (base @ dur @ args)

let event_of_json j =
  let ( let* ) o f = match o with Some v -> f v | None -> Error "malformed event" in
  let* ts = Option.bind (Json.member "ts" j) Json.to_int in
  let* ph_code = Option.bind (Json.member "ph" j) Json.to_str in
  let* cat = Option.bind (Json.member "cat" j) Json.to_str in
  let* name = Option.bind (Json.member "name" j) Json.to_str in
  let args =
    match Json.member "args" j with Some (Json.Obj fields) -> fields | _ -> []
  in
  match ph_code with
  | "i" -> Ok { ts; cat; name; ph = Instant; args }
  | "B" -> Ok { ts; cat; name; ph = Begin; args }
  | "E" -> Ok { ts; cat; name; ph = End; args }
  | "X" ->
    let* dur = Option.bind (Json.member "dur" j) Json.to_int in
    Ok { ts; cat; name; ph = Complete dur; args }
  | other -> Error (Printf.sprintf "unknown phase %S" other)

let jsonl events =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Json.to_buffer buf (event_to_json e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let of_jsonl s =
  let lines = String.split_on_char '\n' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go acc rest
    | line :: rest -> (
      match Json.of_string line with
      | Error msg -> Error msg
      | Ok j -> (
        match event_of_json j with
        | Error msg -> Error msg
        | Ok e -> go (e :: acc) rest))
  in
  go [] lines

let write_jsonl oc events = output_string oc (jsonl events)

(* Chrome about://tracing (trace_event) format: the cycle clock plays the
   role of the microsecond timestamp. *)
let chrome events =
  let one e =
    let base =
      [
        ("name", Json.Str e.name);
        ("cat", Json.Str e.cat);
        ("ph", Json.Str (phase_code e.ph));
        ("ts", Json.Int e.ts);
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
      ]
    in
    let dur = match e.ph with Complete d -> [ ("dur", Json.Int d) ] | _ -> [] in
    let scope = match e.ph with Instant -> [ ("s", Json.Str "g") ] | _ -> [] in
    let args = match e.args with [] -> [] | a -> [ ("args", Json.Obj a) ] in
    Json.Obj (base @ dur @ scope @ args)
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map one events));
      ("displayTimeUnit", Json.Str "ns");
    ]
