(** Structured trace events stamped with the virtual cycle clock, collected
    in a bounded ring buffer and exportable as JSONL or Chrome
    [trace_event] JSON. *)

type phase =
  | Instant
  | Begin
  | End
  | Complete of int  (** a finished span carrying its duration in cycles *)

type event = {
  ts : int;  (** virtual cycle timestamp ([Hw.Cost.t.cycles]) *)
  cat : string;  (** subsystem: "hw", "os", "split", "log", ... *)
  name : string;
  ph : phase;
  args : (string * Json.t) list;
}

type ring

val create : ?capacity:int -> unit -> ring
(** Bounded sink (default 8192 events); once full, new events are counted
    as dropped rather than grown without bound. *)

val capacity : ring -> int
val length : ring -> int

val dropped : ring -> int
(** Events discarded because the ring was full. *)

val add : ring -> event -> unit
val to_list : ring -> event list
(** Oldest retained event first. *)

val clear : ring -> unit

val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result

val jsonl : event list -> string
(** One JSON object per line. *)

val of_jsonl : string -> (event list, string) result
val write_jsonl : out_channel -> event list -> unit

val chrome : event list -> Json.t
(** Chrome [about://tracing] document; cycle counts stand in for the
    microsecond timestamps. *)
