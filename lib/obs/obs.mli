(** Unified observability layer: cycle-stamped structured traces plus a
    metric registry, shared by the hardware model, the kernel and the
    split-memory defense.

    An [Obs.t] couples a {!Trace.ring} sink, a {!Metrics.registry} and a
    clock (wired to the virtual cycle counter by [Kernel.Os.create]). The
    {!null} instance is permanently disabled: every emit path checks
    [enabled] first, so instrumented code pays a single branch and never
    allocates when observability is off — simulation results (cycle
    counts) are identical with and without it. *)

module Json = Json
module Trace = Trace
module Metrics = Metrics

type t

val null : t
(** The shared zero-cost disabled sink; all operations on it are no-ops. *)

val create : ?trace_capacity:int -> unit -> t
(** A live sink with a bounded trace ring (default 8192 events). *)

val enabled : t -> bool

val set_clock : t -> (unit -> int) -> unit
(** Install the timestamp source (the kernel wires this to
    [cost.cycles]). No-op on {!null}. *)

val now : t -> int

val metrics : t -> Metrics.registry
(** The raw registry (no snapshot hooks run); see {!snapshot}. *)

val ring : t -> Trace.ring
val events : t -> Trace.event list

val event : t -> ?args:(string * Json.t) list -> cat:string -> string -> unit
(** Emit an instant event stamped with the current clock. *)

val span_begin :
  t -> key:string -> ?args:(string * Json.t) list -> cat:string -> string -> unit
(** Open a span under [key] (e.g. ["ss:pid3"]) for cross-callback pairing. *)

val span_end :
  t -> key:string -> ?args:(string * Json.t) list -> cat:string -> string -> int option
(** Close the span under [key]; returns its duration in cycles, or [None]
    if no span is open under that key (or disabled). *)

val complete :
  t -> ?args:(string * Json.t) list -> cat:string -> since:int -> string -> unit
(** Emit a finished span: begins at [since], ends now. *)

val counter : t -> string -> Metrics.counter
(** Find-or-create in the live registry; on a disabled sink, a fresh
    {e detached} instrument (registered nowhere, never read back), so
    wiring instrumentation to {!null} mutates no shared state — required
    for machines running on multiple domains. Same for the other kinds. *)

val histogram : t -> string -> Metrics.histogram
val labeled : t -> string -> Metrics.labeled

val count : t -> string -> unit
(** One-shot counter bump by name; no-op when disabled. *)

val add_snapshot_hook : t -> (unit -> unit) -> unit
(** Register a callback run by {!snapshot} — used to import point-in-time
    hardware statistics (TLB/cache/cost) as gauges. No-op on {!null}. *)

val snapshot : t -> Metrics.registry
(** Run the snapshot hooks, then return the registry. *)

val merge_metrics : into:t -> t -> unit
(** Fold the second sink's metrics into [into]: runs the source's snapshot
    hooks (importing its final hardware gauges), then merges registries via
    {!Metrics.merge}. Trace events are not merged (their timestamps are
    per-machine cycle counts). No-op if either sink is disabled. Used by
    the fleet to aggregate per-job sinks in submission order. *)

val write_trace : t -> string -> unit
(** Write the retained events as JSONL. *)

val write_chrome_trace : t -> string -> unit
(** Write the retained events as one Chrome [trace_event] document. *)
