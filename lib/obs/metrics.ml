type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : float }

type histogram = {
  h_name : string;
  mutable n : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
  buckets : int array;  (* power-of-two buckets, see bucket_of *)
}

type labeled = { l_name : string; cells : (string, int ref) Hashtbl.t }

type item =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Labeled of labeled

type registry = {
  mutable rev_items : item list;  (* reverse creation order *)
  index : (string, item) Hashtbl.t;
}

let create () = { rev_items = []; index = Hashtbl.create 32 }

let add_item reg name item =
  Hashtbl.replace reg.index name item;
  reg.rev_items <- item :: reg.rev_items

let counter reg name =
  match Hashtbl.find_opt reg.index name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a counter" name)
  | None ->
    let c = { c_name = name; count = 0 } in
    add_item reg name (Counter c);
    c

let gauge reg name =
  match Hashtbl.find_opt reg.index name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a gauge" name)
  | None ->
    let g = { g_name = name; value = 0.0 } in
    add_item reg name (Gauge g);
    g

let histogram reg name =
  match Hashtbl.find_opt reg.index name with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a histogram" name)
  | None ->
    let h =
      { h_name = name; n = 0; sum = 0; vmin = max_int; vmax = min_int;
        buckets = Array.make 63 0 }
    in
    add_item reg name (Histogram h);
    h

let labeled reg name =
  match Hashtbl.find_opt reg.index name with
  | Some (Labeled l) -> l
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %S is not labeled" name)
  | None ->
    let l = { l_name = name; cells = Hashtbl.create 16 } in
    add_item reg name (Labeled l);
    l

let incr ?(by = 1) c = c.count <- c.count + by
let set_gauge g v = g.value <- v

(* Bucket 0 holds values <= 0; bucket k (k >= 1) holds [2^(k-1), 2^k). *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let bits = ref 0 in
    let v = ref v in
    while !v > 0 do
      bits := !bits + 1;
      v := !v lsr 1
    done;
    min !bits 62
  end

let bucket_bounds k = if k = 0 then (0, 0) else (1 lsl (k - 1), 1 lsl k)

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum + v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let mean h = if h.n = 0 then 0.0 else float_of_int h.sum /. float_of_int h.n

let nonzero_buckets h =
  let acc = ref [] in
  for k = Array.length h.buckets - 1 downto 0 do
    if h.buckets.(k) > 0 then begin
      let lo, hi = bucket_bounds k in
      acc := (lo, hi, h.buckets.(k)) :: !acc
    end
  done;
  !acc

let incr_label ?(by = 1) l key =
  match Hashtbl.find_opt l.cells key with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace l.cells key (ref by)

(* Descending by count, ties broken by key for determinism. *)
let label_cells l =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) l.cells []
  |> List.sort (fun (ka, va) (kb, vb) ->
         match compare vb va with 0 -> compare ka kb | c -> c)

(* Detached instruments: well-formed, but registered nowhere. The disabled
   [Obs] sink hands these out so instrumentation wired to [Obs.null] never
   mutates shared state — a requirement for running machines on multiple
   domains (lib/fleet). *)
let detached_counter name = { c_name = name; count = 0 }
let detached_gauge name = { g_name = name; value = 0.0 }

let detached_histogram name =
  { h_name = name; n = 0; sum = 0; vmin = max_int; vmax = min_int;
    buckets = Array.make 63 0 }

let detached_labeled name = { l_name = name; cells = Hashtbl.create 4 }

let items reg = List.rev reg.rev_items

let counters reg =
  List.filter_map (function Counter c -> Some (c.c_name, c.count) | _ -> None) (items reg)

let gauges reg =
  List.filter_map (function Gauge g -> Some (g.g_name, g.value) | _ -> None) (items reg)

let histograms reg =
  List.filter_map (function Histogram h -> Some h | _ -> None) (items reg)

let labeled_sets reg =
  List.filter_map
    (function Labeled l -> Some (l.l_name, label_cells l) | _ -> None)
    (items reg)

(* Fold [src] into [into], matching items by name in [src]'s creation
   order: counters and histograms accumulate, gauges take [src]'s value
   (last write wins, like sequential snapshotting), labeled cells add up.
   Deterministic given a deterministic [src] — labeled cells are visited in
   sorted order so [into]'s internal state is reproducible too. *)
let merge ~into src =
  let merge_histogram (dst : histogram) (h : histogram) =
    if h.n > 0 then begin
      dst.n <- dst.n + h.n;
      dst.sum <- dst.sum + h.sum;
      if h.vmin < dst.vmin then dst.vmin <- h.vmin;
      if h.vmax > dst.vmax then dst.vmax <- h.vmax;
      Array.iteri (fun k c -> dst.buckets.(k) <- dst.buckets.(k) + c) h.buckets
    end
  in
  List.iter
    (function
      | Counter c -> incr ~by:c.count (counter into c.c_name)
      | Gauge g -> set_gauge (gauge into g.g_name) g.value
      | Histogram h -> merge_histogram (histogram into h.h_name) h
      | Labeled l ->
        let dst = labeled into l.l_name in
        List.iter
          (fun (key, v) -> incr_label ~by:v dst key)
          (List.sort compare
             (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) l.cells [])))
    (items src)

let histogram_to_json h =
  Json.Obj
    [
      ("count", Json.Int h.n);
      ("sum", Json.Int h.sum);
      ("min", Json.Int (if h.n = 0 then 0 else h.vmin));
      ("max", Json.Int (if h.n = 0 then 0 else h.vmax));
      ("mean", Json.Float (mean h));
      ( "buckets",
        Json.List
          (List.map
             (fun (lo, hi, c) ->
               Json.Obj
                 [ ("lo", Json.Int lo); ("hi", Json.Int hi); ("count", Json.Int c) ])
             (nonzero_buckets h)) );
    ]

let to_json reg =
  let one = function
    | Counter c -> (c.c_name, Json.Int c.count)
    | Gauge g -> (g.g_name, Json.Float g.value)
    | Histogram h -> (h.h_name, histogram_to_json h)
    | Labeled l ->
      (l.l_name, Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (label_cells l)))
  in
  Json.Obj (List.map one (items reg))
