module Json = Json
module Trace = Trace
module Metrics = Metrics

type t = {
  enabled : bool;
  mutable clock : unit -> int;
  ring : Trace.ring;
  metrics : Metrics.registry;
  open_spans : (string, int) Hashtbl.t;
  mutable hooks : (unit -> unit) list;
}

let make enabled capacity =
  {
    enabled;
    clock = (fun () -> 0);
    ring = Trace.create ~capacity ();
    metrics = Metrics.create ();
    open_spans = Hashtbl.create 8;
    hooks = [];
  }

(* The shared disabled instance: every emit path checks [enabled] first, so
   attaching the null sink costs one branch and allocates nothing. All
   mutating entry points below are no-ops when disabled, which keeps this
   shared value truly inert. *)
let null = make false 1

let create ?(trace_capacity = 8192) () = make true trace_capacity

let enabled t = t.enabled
let set_clock t f = if t.enabled then t.clock <- f
let now t = t.clock ()
let metrics t = t.metrics
let ring t = t.ring
let events t = Trace.to_list t.ring

let event t ?(args = []) ~cat name =
  if t.enabled then
    Trace.add t.ring { Trace.ts = t.clock (); cat; name; ph = Trace.Instant; args }

let span_begin t ~key ?(args = []) ~cat name =
  if t.enabled then begin
    let ts = t.clock () in
    Hashtbl.replace t.open_spans key ts;
    Trace.add t.ring { Trace.ts; cat; name; ph = Trace.Begin; args }
  end

let span_end t ~key ?(args = []) ~cat name =
  if not t.enabled then None
  else
    match Hashtbl.find_opt t.open_spans key with
    | None -> None
    | Some t0 ->
      Hashtbl.remove t.open_spans key;
      let ts = t.clock () in
      Trace.add t.ring { Trace.ts; cat; name; ph = Trace.End; args };
      Some (ts - t0)

let complete t ?(args = []) ~cat ~since name =
  if t.enabled then begin
    let now = t.clock () in
    Trace.add t.ring
      { Trace.ts = since; cat; name; ph = Trace.Complete (now - since); args }
  end

(* When disabled, hand out fresh detached instruments instead of touching
   the registry: [null] is shared process-wide (and, with lib/fleet, across
   domains), so it must never be mutated — not even by instrument
   registration. *)
let counter t name =
  if t.enabled then Metrics.counter t.metrics name else Metrics.detached_counter name

let histogram t name =
  if t.enabled then Metrics.histogram t.metrics name else Metrics.detached_histogram name

let labeled t name =
  if t.enabled then Metrics.labeled t.metrics name else Metrics.detached_labeled name

let count t name = if t.enabled then Metrics.incr (Metrics.counter t.metrics name)

let add_snapshot_hook t f = if t.enabled then t.hooks <- f :: t.hooks

let snapshot t =
  List.iter (fun f -> f ()) (List.rev t.hooks);
  t.metrics

(* Fold a per-job sink into an aggregate one (lib/fleet): run the source's
   snapshot hooks first so its point-in-time hardware gauges are current,
   then merge the registries. Trace events are deliberately not merged —
   their timestamps are per-machine cycle counts with no common clock. *)
let merge_metrics ~into src =
  if into.enabled && src.enabled then
    Metrics.merge ~into:into.metrics (snapshot src)

let write_trace t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      Trace.write_jsonl oc (events t))

let write_chrome_trace t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (Json.to_string (Trace.chrome (events t)));
      output_char oc '\n')
