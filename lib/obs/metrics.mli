(** Metric registry: named counters, float gauges, power-of-two-bucket
    histograms and labeled counter sets (e.g. per-pid, per-page tallies),
    exportable as JSON. Registration is find-or-create, so independent
    instrumentation sites can share a metric by name. *)

type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : float }

type histogram = {
  h_name : string;
  mutable n : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
  buckets : int array;
}

type labeled

type registry

val create : unit -> registry

val counter : registry -> string -> counter
(** Find or create. @raise Invalid_argument if the name is registered with
    a different kind. Same contract for the other three. *)

val gauge : registry -> string -> gauge
val histogram : registry -> string -> histogram
val labeled : registry -> string -> labeled

val incr : ?by:int -> counter -> unit
val set_gauge : gauge -> float -> unit

val observe : histogram -> int -> unit
(** Record one sample. Bucket 0 holds values <= 0; bucket [k] holds
    [[2^(k-1), 2^k)]. *)

val bucket_bounds : int -> int * int
val mean : histogram -> float

val nonzero_buckets : histogram -> (int * int * int) list
(** [(lo, hi, count)] for every non-empty bucket, ascending. *)

val incr_label : ?by:int -> labeled -> string -> unit

val label_cells : labeled -> (string * int) list
(** Descending by count (ties by key). *)

val detached_counter : string -> counter
(** A well-formed instrument registered in no registry — handed out by
    disabled [Obs] sinks so instrumentation never mutates shared state.
    Same for the other three kinds. *)

val detached_gauge : string -> gauge
val detached_histogram : string -> histogram
val detached_labeled : string -> labeled

val merge : into:registry -> registry -> unit
(** Fold the second registry into [into], matching items by name in the
    source's creation order: counters and histograms accumulate, gauges
    take the source value, labeled cells add up. @raise Invalid_argument
    if a name is registered in [into] with a different kind. *)

val counters : registry -> (string * int) list
(** Creation order; same for the other accessors. *)

val gauges : registry -> (string * float) list
val histograms : registry -> histogram list
val labeled_sets : registry -> (string * (string * int) list) list

val histogram_to_json : histogram -> Json.t
val to_json : registry -> Json.t
